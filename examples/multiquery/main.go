// Multiquery demonstrates the paper's §6 future-work direction: several
// integration queries executing concurrently on one mediator, scheduled by
// a single global DQS. Because every query spends most of its life waiting
// for wrappers, their fragments interleave almost for free: the makespan of
// the batch approaches the response time of the slowest single query, far
// below running them back to back.
package main

import (
	"fmt"
	"log"
	"time"

	"dqs"
)

func main() {
	cfg := dqs.DefaultConfig()
	cfg.MemoryBytes = 256 << 20 // shared pool for all queries
	const wait = 50 * time.Microsecond

	var queries []dqs.QueryRun
	for i := 0; i < 3; i++ {
		w, err := dqs.Fig5Small(int64(100 + i)) // three distinct datasets
		if err != nil {
			log.Fatal(err)
		}
		queries = append(queries, dqs.QueryRun{
			Label:      fmt.Sprintf("q%d", i+1),
			Workload:   w,
			Deliveries: dqs.UniformDeliveries(w, wait),
		})
	}

	results, err := dqs.RunConcurrent(cfg, queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Concurrent execution (one mediator, global dynamic scheduler):")
	var makespan time.Duration
	for i, r := range results {
		fmt.Printf("  %s finished at %7.3fs  (%d rows)\n", queries[i].Label, r.ResponseTime.Seconds(), r.OutputRows)
		if r.ResponseTime > makespan {
			makespan = r.ResponseTime
		}
	}

	var serial time.Duration
	for _, q := range queries {
		res, err := dqs.Run(dqs.RunSpec{
			Workload: q.Workload, Config: cfg, Strategy: dqs.DSE, Deliveries: q.Deliveries,
		})
		if err != nil {
			log.Fatal(err)
		}
		serial += res.ResponseTime
	}
	fmt.Printf("\nmakespan %0.3fs vs serial %0.3fs  (speedup %.2fx)\n",
		makespan.Seconds(), serial.Seconds(), serial.Seconds()/makespan.Seconds())
	fmt.Println("The concurrent batch overlaps every query's delivery waits; the §6")
	fmt.Println("tradeoff is the extra total work (materialization) and memory pressure.")
}
